"""Process-wide active Instrumentation (opt-in, explicitly scoped).

Experiment entry points (the CLI's ``run --metrics-out``, the runner's
``metrics_path``) want every system built underneath them — often one per
sweep point — to share one registry and one JSONL sink without threading
an ``obs`` argument through every figure function.  They wrap the run in
:func:`activated`; :class:`~repro.engine.system.MicroblogSystem` picks up
the active Instrumentation when none is passed explicitly.

Outside any :func:`activated` scope there is no active Instrumentation
and each system gets its own private registry, which is what unit tests
and library users want by default.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.instrument import Instrumentation

__all__ = ["get_active", "set_active", "activated"]

_active: Optional[Instrumentation] = None


def get_active() -> Optional[Instrumentation]:
    """The Instrumentation of the enclosing :func:`activated` scope."""
    return _active


def set_active(obs: Optional[Instrumentation]) -> None:
    global _active
    _active = obs


@contextmanager
def activated(obs: Instrumentation) -> Iterator[Instrumentation]:
    """Make ``obs`` the active Instrumentation for the duration."""
    previous = _active
    set_active(obs)
    try:
        yield obs
    finally:
        set_active(previous)
