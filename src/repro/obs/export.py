"""Registry exporters: JSON and Prometheus-style text exposition.

Two render targets for one :class:`~repro.obs.metrics.MetricsRegistry`
snapshot:

* :func:`to_json` — the snapshot dict serialised, for machine diffing
  and the ``repro stats --format json`` output;
* :func:`to_prometheus_text` — the text exposition format scrapers (and
  humans) read: counters as ``_total``, histograms as
  ``_count``/``_sum`` plus quantile gauges.

Metric names are sanitised to the Prometheus charset (dots and dashes
become underscores) and prefixed ``repro_`` to namespace them.  Each
family gets a ``# HELP`` line (matched by metric-name prefix) and
histograms expose ``_min``/``_max``/``_mean`` alongside the quantiles,
since log₂-bucketed quantiles are bounds while min/max/mean are exact.
"""

from __future__ import annotations

import json
import re

from repro.obs.metrics import MetricsRegistry

__all__ = ["to_json", "to_prometheus_text"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")

# Longest-prefix-match HELP text for metric families.  The shard prefix
# is stripped before matching so shard.3.disk.lookups shares disk.'s
# help line.
_HELP_PREFIXES = (
    ("query.miss.cause.", "Memory misses attributed to the eviction decision that caused them"),
    ("query.", "Query execution: per-mode hits/misses, disk lookups, latency"),
    ("flush.", "Flush cycles: freed bytes, flushed records/postings, per-phase attribution"),
    ("disk.cache.", "Modelled disk read cache hits/misses/evictions"),
    ("disk.", "Simulated disk tier I/O ledger"),
    ("memory.", "In-memory index occupancy and capacity"),
    ("span.", "Wall-clock span timings"),
    ("slo.", "SLO objective state: windowed value, budget spent, burn rates"),
    ("watermark.", "Resource high-water marks sampled at flush boundaries"),
)
_SHARD_RE = re.compile(r"^shard\.\d+\.")


def _prom_name(name: str) -> str:
    sanitised = _NAME_RE.sub("_", name)
    if not sanitised or not (sanitised[0].isalpha() or sanitised[0] == "_"):
        sanitised = "_" + sanitised
    return f"repro_{sanitised}"


def _help_text(name: str) -> str:
    stripped = _SHARD_RE.sub("", name)
    for prefix, text in _HELP_PREFIXES:
        if stripped.startswith(prefix):
            if stripped != name:
                return f"{text} (per-shard twin)"
            return text
    return "repro metric"


def _format_value(value: float) -> str:
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def to_json(registry: MetricsRegistry, indent: int = 2) -> str:
    """The registry snapshot as a JSON document."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format."""
    snapshot = registry.snapshot()
    lines: list[str] = []
    for name, value in snapshot["counters"].items():
        prom = _prom_name(name)
        lines.append(f"# HELP {prom}_total {_help_text(name)}")
        lines.append(f"# TYPE {prom}_total counter")
        lines.append(f"{prom}_total {_format_value(value)}")
    for name, value in snapshot["gauges"].items():
        prom = _prom_name(name)
        lines.append(f"# HELP {prom} {_help_text(name)}")
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_format_value(value)}")
    for name, hist in snapshot["histograms"].items():
        prom = _prom_name(name)
        lines.append(f"# HELP {prom} {_help_text(name)}")
        lines.append(f"# TYPE {prom} summary")
        for quantile in ("p50", "p95", "p99"):
            lines.append(
                f'{prom}{{quantile="0.{quantile[1:]}"}} '
                f"{_format_value(hist[quantile])}"
            )
        lines.append(f"{prom}_count {_format_value(hist['count'])}")
        lines.append(f"{prom}_sum {_format_value(hist['sum'])}")
        lines.append(f"{prom}_min {_format_value(hist['min'])}")
        lines.append(f"{prom}_max {_format_value(hist['max'])}")
        lines.append(f"{prom}_mean {_format_value(hist['mean'])}")
    return "\n".join(lines) + "\n"
