"""Structured event sinks: where instrumentation events go.

An *event* is one flat dict (``{"type": "flush", "policy": ..., ...}``)
describing something that happened — a flush phase, a query, a disk
write.  Sinks decide what to do with it:

* :class:`NullSink` — drop it (the default; instrumentation stays on but
  costs only the dict build);
* :class:`ListSink` — keep it in memory (tests, interactive inspection);
* :class:`JsonlSink` — append it as one JSON line to a file, the format
  the experiment harness dumps alongside its CSVs.

Values must be JSON-serialisable; emitters stick to numbers, strings,
bools, and small dicts of those.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Optional, Union

__all__ = ["EventSink", "NullSink", "ListSink", "JsonlSink"]


class EventSink:
    """Base sink: subclasses override :meth:`emit`."""

    def emit(self, event: dict) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources; emitting afterwards is an error."""

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullSink(EventSink):
    """Discards every event."""

    def emit(self, event: dict) -> None:
        pass


class ListSink(EventSink):
    """Buffers events in memory, newest last."""

    def __init__(self) -> None:
        self.events: list[dict] = []

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def of_type(self, type_: str) -> list[dict]:
        return [e for e in self.events if e.get("type") == type_]


class JsonlSink(EventSink):
    """Appends each event as one JSON line to ``path``.

    The file is opened lazily on the first emit (a sink configured but
    never hit leaves no file behind) and flushed per line so a crashed
    run still yields a readable prefix.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle: Optional[IO[str]] = None

    def emit(self, event: dict) -> None:
        self.write_raw(json.dumps(event, sort_keys=True))

    def write_raw(self, line: str) -> None:
        """Append one pre-serialised JSONL line verbatim.

        The parallel trial runner merges per-worker metric shards into the
        parent's sink through this path — the lines are already JSON, so
        re-parsing them just to re-serialise would be waste.
        """
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(line)
        self._handle.write("\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
