"""Live ops endpoint: the registry served over HTTP while a run executes.

:class:`OpsServer` is a stdlib-only (``http.server``) background thread
exposing three read-only endpoints against a live
:class:`~repro.obs.metrics.MetricsRegistry`:

* ``/metrics``  — Prometheus text exposition (scrapeable);
* ``/snapshot`` — the JSON registry snapshot (optionally a richer
  system-provided snapshot when a provider callable is given);
* ``/slo``      — the SLO tracker's objective states and error budgets
  (404 unless an ``slo_provider`` is wired);
* ``/healthz``  — liveness probe: ``200 ok``, or ``503`` when the SLO
  provider reports an exhausted error budget (load balancers drain
  breached instances).

Wired as ``repro run --serve PORT`` (serve while the figures run) and
``repro serve`` (a standalone demo that drives a continuous workload).
The server never mutates anything: it renders whatever the registry
holds at request time.  Rendering races harmlessly with the run thread
(metric dicts grow while we iterate), so each render retries a few
times on ``RuntimeError: dict changed size`` before giving up with a
503 — acceptable for an ops endpoint, never for the experiment itself.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional

from repro.obs.export import to_prometheus_text
from repro.obs.metrics import MetricsRegistry

__all__ = ["OpsServer"]

_RENDER_RETRIES = 5


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-ops/1"

    # The owning OpsServer injects itself on the server object.
    def _ops(self) -> "OpsServer":
        return self.server.ops  # type: ignore[attr-defined]

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            if self._ops().slo_healthy():
                self._respond(200, "text/plain; charset=utf-8", "ok\n")
            else:
                self._respond(
                    503, "text/plain; charset=utf-8", "slo budget exhausted\n"
                )
            return
        if path == "/slo":
            state = self._ops().take_slo_state()
            if state is None:
                self._respond(404, "text/plain; charset=utf-8", "no slo tracker\n")
                return
            self._respond(
                200,
                "application/json; charset=utf-8",
                json.dumps(state, indent=2, sort_keys=True) + "\n",
            )
            return
        if path == "/metrics":
            self._render(
                "text/plain; version=0.0.4; charset=utf-8",
                lambda: to_prometheus_text(self._ops().registry),
            )
            return
        if path == "/snapshot":
            self._render(
                "application/json; charset=utf-8",
                lambda: json.dumps(self._ops().take_snapshot(), indent=2, sort_keys=True)
                + "\n",
            )
            return
        self._respond(404, "text/plain; charset=utf-8", "not found\n")

    def _render(self, content_type: str, render: Callable[[], str]) -> None:
        for _ in range(_RENDER_RETRIES):
            try:
                body = render()
            except RuntimeError:
                # Registry mutated mid-iteration; take a fresh view.
                continue
            self._respond(200, content_type, body)
            return
        self._respond(503, "text/plain; charset=utf-8", "registry busy, retry\n")

    def _respond(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # ops requests must not spam the experiment's stdout


class OpsServer:
    """Background HTTP server over a live metrics registry.

    ``port=0`` asks the OS for a free port (tests); the bound port is on
    ``server.port`` after :meth:`start`.  ``snapshot_provider`` lets an
    entry point serve a richer ``/snapshot`` (e.g. the system facade's
    ``snapshot()`` with per-shard tables) instead of the bare registry.
    ``slo_provider`` (e.g. the facade's ``slo_state``) turns on ``/slo``
    and makes ``/healthz`` breach-aware; it is read-only — serving never
    ticks the tracker, so scrape rate cannot skew tick-based budgets.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        port: int = 8080,
        host: str = "127.0.0.1",
        snapshot_provider: Optional[Callable[[], dict]] = None,
        slo_provider: Optional[Callable[[], Optional[dict]]] = None,
    ) -> None:
        self.registry = registry
        self._snapshot_provider = snapshot_provider
        self._slo_provider = slo_provider
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.ops = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def take_snapshot(self) -> dict:
        if self._snapshot_provider is not None:
            return self._snapshot_provider()
        return self.registry.snapshot()

    def take_slo_state(self) -> Optional[dict]:
        if self._slo_provider is None:
            return None
        try:
            return self._slo_provider()
        except Exception:
            # A broken provider must not take the ops endpoint down.
            return None

    def slo_healthy(self) -> bool:
        """False only when the SLO provider affirmatively reports an
        exhausted budget; provider absence or failure degrades to
        healthy (liveness must not flap on plumbing errors)."""
        state = self.take_slo_state()
        if state is None:
            return True
        return bool(state.get("healthy", True))

    def start(self) -> "OpsServer":
        if self._thread is not None:
            raise RuntimeError("OpsServer already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-ops-{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._thread.join(timeout=5.0)
        self._httpd.server_close()
        self._thread = None

    def __enter__(self) -> "OpsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
