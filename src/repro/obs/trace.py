"""Trace contexts: deterministic ids tying events of one request together.

A *trace* follows one logical operation — a top-k query or a flush
cycle — end to end: through the executor's single/OR/AND paths, the
sharded scatter-gather adapters, the disk tier's cache/run machinery,
and the per-phase flush spans.  Each trace is a tree of *spans*; every
span event carries ``(trace, span, parent_span)`` so the tree can be
reassembled offline from the JSONL event stream (see
:mod:`repro.obs.traceview` and the ``repro trace`` CLI).

Ids are **deterministic**: the trace id is ``<root-name>-<serial>``
where the serial is a per-:class:`~repro.obs.instrument.Instrumentation`
counter, and span ids are small integers allocated in entry order
within the trace.  No wall-clock, no randomness — two identical runs
produce identical id streams, which is what lets differential tests
diff whole trace files.

The context object itself is deliberately tiny: the heavy lifting
(timing, event emission, the tracing on/off gate) lives in
:meth:`Instrumentation.trace` / :meth:`Instrumentation.trace_span` /
:meth:`Instrumentation.trace_point`, so components touch tracing only
through the shared Instrumentation they already hold.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["TraceContext"]


class TraceContext:
    """One in-flight trace: its id plus the open-span stack.

    Span ids are allocated sequentially (the root is always span 0); the
    stack tracks the currently open span so a child knows its parent at
    entry time.  ``fields`` collects extra key/values callers attach to
    the *root* event before it closes (e.g. the executor stamps
    ``hit``/``disk_lookups`` on the query trace once the result exists).
    """

    __slots__ = ("trace_id", "root_name", "fields", "_next_span", "_stack")

    def __init__(self, trace_id: str, root_name: str) -> None:
        self.trace_id = trace_id
        self.root_name = root_name
        self.fields: dict = {}
        self._next_span = 0
        self._stack: list[int] = []

    def allocate_span(self) -> int:
        """Next span id (entry order, deterministic)."""
        span_id = self._next_span
        self._next_span += 1
        return span_id

    @property
    def current_span_id(self) -> Optional[int]:
        """Id of the innermost open span (None before the root opens)."""
        return self._stack[-1] if self._stack else None

    def push(self, span_id: int) -> None:
        self._stack.append(span_id)

    def pop(self) -> None:
        self._stack.pop()

    @property
    def span_count(self) -> int:
        """Spans allocated so far (root included)."""
        return self._next_span

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TraceContext({self.trace_id!r}, spans={self._next_span}, "
            f"open={len(self._stack)})"
        )
