"""Declarative SLO tracking with error budgets and burn rates.

An :class:`SLOSpec` is plain data — a list of objectives, each naming a
metric *selector*, a comparison against a threshold, and an error
budget.  An :class:`SLOTracker` binds a spec to a live
:class:`~repro.obs.metrics.MetricsRegistry` and is *ticked* at
flush-cycle boundaries (the system's natural heartbeat — deterministic,
off the per-record hot path).  Each tick evaluates every objective over
a rolling window of registry deltas, appends a compliant/violating
verdict to the objective's history, and recomputes its error budget:

* ``allowed = budget × slow_window`` — the number of violating ticks
  the objective may accumulate inside the slow window;
* ``budget_spent = violations / allowed`` — ≥ 1.0 means the budget is
  exhausted and the objective is **breached** (``budget: 0`` breaches
  on the first violation, the deterministic test hook);
* ``burn_fast`` / ``burn_slow`` — the violating fraction of the
  fast/slow window divided by the budget, the SRE pair telling apart
  "burning hot right now" from "slowly bleeding".

Breach and recovery transitions emit ``slo_breach`` / ``slo_recovered``
events through the normal event sink and fire registered callbacks
(the flight recorder dumps on breach).  Everything is deterministic
given the tick sequence: no wall clocks, no sampling.

Metric selectors, resolved against the registry on every tick:

* ``hit_ratio`` / ``hit_ratio.<mode>`` — derived from the
  ``query.<mode>.hits``/``.misses`` counter deltas inside the window;
  ticks with no queries are skipped (no data is not a violation);
* ``<histogram>.p50|p90|p95|p99|mean|count|sum`` — the statistic of the
  named histogram over the window's bucketwise deltas (percentiles
  interpolated via
  :func:`~repro.obs.metrics.percentile_from_buckets`, clamped to the
  cumulative observed min/max); ``.max`` is the cumulative maximum
  (log₂ buckets cannot recover a windowed max);
* an exact gauge name — the gauge's current value (watermarks, queue
  depth);
* an exact counter name — the counter's delta across the window.

Unknown selectors yield no data and never create metrics (the tracker
probes with the registry's non-creating accessors).
"""

from __future__ import annotations

import json
import math
import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Union

from repro.obs.metrics import MetricsRegistry, percentile_from_buckets

__all__ = [
    "SLObjective",
    "SLOSpec",
    "SLOTracker",
    "evaluate_registry",
]

#: Histogram statistic suffixes a selector may end with.
_HIST_STATS = ("p50", "p90", "p95", "p99", "mean", "max", "count", "sum")

_PERCENTILES = {"p50": 50.0, "p90": 90.0, "p95": 95.0, "p99": 99.0}

_DEFAULTS = {"budget": 0.1, "window": 5, "fast_window": 5, "slow_window": 60}


@dataclass(frozen=True)
class SLObjective:
    """One objective: ``metric op threshold`` plus its error budget."""

    name: str
    metric: str
    op: str  # "<=" (from "max") or ">=" (from "min")
    threshold: float
    #: Fraction of slow-window ticks allowed to violate before breach.
    budget: float = 0.1
    #: Ticks of registry history the metric value is computed over.
    window: int = 5
    #: Ticks in the fast burn-rate window.
    fast_window: int = 5
    #: Ticks in the slow burn-rate window (the budget's denominator).
    slow_window: int = 60

    def complies(self, value: float) -> bool:
        if self.op == "<=":
            return value <= self.threshold
        return value >= self.threshold

    def describe(self) -> str:
        return f"{self.metric} {self.op} {self.threshold:g}"


@dataclass(frozen=True)
class SLOSpec:
    """A parsed set of objectives (the ``slo_spec`` config payload)."""

    objectives: tuple[SLObjective, ...]

    @classmethod
    def from_dict(cls, data: dict) -> "SLOSpec":
        if not isinstance(data, dict):
            raise ValueError(f"SLO spec must be a dict, got {type(data).__name__}")
        defaults = dict(_DEFAULTS)
        overrides = data.get("defaults", {})
        if not isinstance(overrides, dict):
            raise ValueError("SLO spec 'defaults' must be a dict")
        defaults.update(overrides)
        raw = data.get("objectives")
        if not isinstance(raw, list) or not raw:
            raise ValueError("SLO spec needs a non-empty 'objectives' list")
        objectives = []
        seen: set[str] = set()
        for i, entry in enumerate(raw):
            if not isinstance(entry, dict):
                raise ValueError(f"objective #{i} must be a dict")
            metric = entry.get("metric")
            if not metric or not isinstance(metric, str):
                raise ValueError(f"objective #{i} needs a 'metric' selector")
            has_max = "max" in entry
            has_min = "min" in entry
            if has_max == has_min:
                raise ValueError(
                    f"objective #{i} ({metric}) needs exactly one of 'max'/'min'"
                )
            threshold = float(entry["max"] if has_max else entry["min"])
            name = entry.get("name") or metric
            if name in seen:
                raise ValueError(f"duplicate objective name {name!r}")
            seen.add(name)
            budget = float(entry.get("budget", defaults["budget"]))
            if budget < 0:
                raise ValueError(f"objective {name!r}: budget must be >= 0")
            window = int(entry.get("window", defaults["window"]))
            fast = int(entry.get("fast_window", defaults["fast_window"]))
            slow = int(entry.get("slow_window", defaults["slow_window"]))
            if min(window, fast, slow) < 1:
                raise ValueError(f"objective {name!r}: windows must be >= 1")
            objectives.append(
                SLObjective(
                    name=name,
                    metric=metric,
                    op="<=" if has_max else ">=",
                    threshold=threshold,
                    budget=budget,
                    window=window,
                    fast_window=fast,
                    slow_window=slow,
                )
            )
        return cls(objectives=tuple(objectives))

    @classmethod
    def parse(cls, spec: Union[str, dict, "SLOSpec"]) -> "SLOSpec":
        """Parse a spec given as a dict, a JSON string, a path to a JSON
        file, or an already-built SLOSpec."""
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, dict):
            return cls.from_dict(spec)
        if isinstance(spec, str):
            text = spec.strip()
            if text.startswith("{"):
                return cls.from_dict(json.loads(text))
            return cls.from_json_file(spec)
        raise ValueError(f"cannot parse SLO spec from {type(spec).__name__}")

    @classmethod
    def from_json_file(cls, path: str) -> "SLOSpec":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


# ----------------------------------------------------------------------
# Probes: capture the raw registry state a selector needs, then compute
# the windowed value from (old capture, new capture).  Captures are
# plain tuples so deltas are exact and cheap.
# ----------------------------------------------------------------------


def _split_hit_ratio(metric: str) -> Optional[Optional[str]]:
    """``hit_ratio`` → "" (aggregate), ``hit_ratio.and`` → "and",
    anything else → None."""
    if metric == "hit_ratio":
        return ""
    if metric.startswith("hit_ratio."):
        return metric[len("hit_ratio."):]
    return None


def _hit_counts(registry: MetricsRegistry, mode: str) -> tuple[float, float]:
    """Cumulative (hits, misses) for one mode, or summed over all modes
    when ``mode`` is empty."""
    if mode:
        hits = registry.get_counter(f"query.{mode}.hits")
        misses = registry.get_counter(f"query.{mode}.misses")
        return (
            hits.value if hits is not None else 0.0,
            misses.value if misses is not None else 0.0,
        )
    hits = misses = 0.0
    for name, value in registry.counter_values("query.").items():
        parts = name.split(".")
        if len(parts) != 2:
            continue
        if parts[1] == "hits":
            hits += value
        elif parts[1] == "misses":
            misses += value
    return hits, misses


def _hist_selector(metric: str) -> Optional[tuple[str, str]]:
    """``query.simulated_latency_seconds.p99`` → (histogram name, stat)."""
    base, _, stat = metric.rpartition(".")
    if base and stat in _HIST_STATS:
        return base, stat
    return None


def _capture(registry: MetricsRegistry, objective: SLObjective):
    """A cheap, delta-able snapshot of the selector's current state, or
    None when the metric does not exist (yet)."""
    metric = objective.metric
    mode = _split_hit_ratio(metric)
    if mode is not None:
        return ("hit_ratio", _hit_counts(registry, mode))
    hist_sel = _hist_selector(metric)
    if hist_sel is not None:
        hist = registry.get_histogram(hist_sel[0])
        if hist is not None:
            return (
                "histogram",
                (
                    hist.count,
                    hist.total,
                    hist.min,
                    hist.max,
                    tuple(hist._counts),
                    hist.scale,
                ),
            )
        # Fall through: a gauge/counter may legitimately end in ".count".
    gauge = registry.get_gauge(metric)
    if gauge is not None:
        return ("gauge", gauge.value)
    counter = registry.get_counter(metric)
    if counter is not None:
        return ("counter", counter.value)
    return None


def _window_value(objective: SLObjective, old, new) -> Optional[float]:
    """The objective's metric value over (old capture → new capture), or
    None when the window holds no data."""
    kind, state = new
    if kind == "gauge":
        return float(state)
    if kind == "counter":
        base = old[1] if old is not None and old[0] == "counter" else 0.0
        return float(state) - float(base)
    if kind == "hit_ratio":
        hits, misses = state
        if old is not None and old[0] == "hit_ratio":
            hits -= old[1][0]
            misses -= old[1][1]
        total = hits + misses
        if total <= 0:
            return None
        return hits / total
    # Histogram: bucketwise delta between the two cumulative states.
    count, total, lo, hi, buckets, scale = state
    if old is not None and old[0] == "histogram":
        o_count, o_total, _, _, o_buckets, _ = old[1]
        count -= o_count
        total -= o_total
        buckets = tuple(b - ob for b, ob in zip(buckets, o_buckets))
    stat = objective.metric.rpartition(".")[2]
    if stat == "count":
        return float(count)
    if stat == "max":
        return float(hi) if count or hi else None
    if count <= 0:
        return None
    if stat == "sum":
        return float(total)
    if stat == "mean":
        return total / count
    lo = 0.0 if math.isinf(lo) else lo
    return percentile_from_buckets(buckets, count, _PERCENTILES[stat], scale, lo, hi)


@dataclass
class _ObjectiveState:
    """Mutable per-objective tracking state (tracker-internal)."""

    objective: SLObjective
    captures: deque  # recent raw captures, oldest ≤ window ticks back
    history: deque  # violating? bool per evaluated tick, slow window
    value: Optional[float] = None
    ticks: int = 0  # evaluated (data-bearing) ticks
    no_data: int = 0
    violations: int = 0  # inside the slow window
    budget_spent: float = 0.0
    burn_fast: float = 0.0
    burn_slow: float = 0.0
    breached: bool = False

    def as_dict(self) -> dict:
        o = self.objective
        return {
            "name": o.name,
            "metric": o.metric,
            "op": o.op,
            "threshold": o.threshold,
            "budget": o.budget,
            "window": o.window,
            "fast_window": o.fast_window,
            "slow_window": o.slow_window,
            "value": self.value,
            "ticks": self.ticks,
            "no_data": self.no_data,
            "violations": self.violations,
            "budget_spent": self.budget_spent,
            "burn_fast": self.burn_fast,
            "burn_slow": self.burn_slow,
            "breached": self.breached,
            "healthy": not self.breached,
        }


class SLOTracker:
    """Evaluates an :class:`SLOSpec` against a registry, tick by tick.

    Thread-safe: pipelined ingest ticks from flush-worker threads while
    an :class:`~repro.obs.server.OpsServer` may read :meth:`state` from
    its handler threads.
    """

    def __init__(
        self,
        spec: SLOSpec,
        registry: MetricsRegistry,
        emit: Optional[Callable[..., None]] = None,
        on_breach: Sequence[Callable[[dict], None]] = (),
    ) -> None:
        self.spec = spec
        self.registry = registry
        self._emit = emit
        self._on_breach = list(on_breach)
        self._lock = threading.Lock()
        self._tick_count = 0
        self._states = [
            _ObjectiveState(
                objective=o,
                captures=deque(maxlen=o.window + 1),
                history=deque(maxlen=o.slow_window),
            )
            for o in spec.objectives
        ]

    def add_breach_callback(self, callback: Callable[[dict], None]) -> None:
        self._on_breach.append(callback)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def tick(self) -> None:
        """Evaluate every objective against the registry's current
        state; called at flush-cycle boundaries."""
        with self._lock:
            self._tick_count += 1
            self.registry.counter("slo.ticks").inc()
            transitions = [self._tick_objective(state) for state in self._states]
        # Callbacks run outside the lock: a breach dump may serialise
        # the registry and must not deadlock against a concurrent tick.
        for state, transition in zip(self._states, transitions):
            if transition is None:
                continue
            payload = state.as_dict()
            if transition == "breach":
                self.registry.counter("slo.breaches").inc()
                if self._emit is not None:
                    self._emit("slo_breach", **payload)
                for callback in list(self._on_breach):
                    callback(payload)
            elif self._emit is not None:
                self._emit("slo_recovered", **payload)

    def _tick_objective(self, state: _ObjectiveState) -> Optional[str]:
        objective = state.objective
        capture = _capture(self.registry, objective)
        if capture is None:
            state.no_data += 1
            return None
        old = state.captures[0] if state.captures else None
        state.captures.append(capture)
        value = _window_value(objective, old, capture)
        if value is None:
            state.no_data += 1
            return None
        state.value = value
        state.ticks += 1
        state.history.append(not objective.complies(value))
        history = state.history
        state.violations = sum(history)
        fast = list(history)[-objective.fast_window:]
        viol_fast = sum(fast)
        allowed = objective.budget * objective.slow_window
        if allowed > 0:
            state.budget_spent = state.violations / allowed
        else:
            state.budget_spent = float(state.violations)
        if objective.budget > 0:
            state.burn_fast = (viol_fast / objective.fast_window) / objective.budget
            state.burn_slow = (
                state.violations / objective.slow_window
            ) / objective.budget
        else:
            state.burn_fast = float(viol_fast)
            state.burn_slow = float(state.violations)
        breached = state.violations > allowed
        self._export_gauges(state)
        if breached and not state.breached:
            state.breached = True
            return "breach"
        if not breached and state.breached:
            state.breached = False
            return "recovered"
        state.breached = breached
        return None

    def _export_gauges(self, state: _ObjectiveState) -> None:
        prefix = f"slo.{state.objective.name}."
        registry = self.registry
        registry.gauge(prefix + "value").set(state.value)
        registry.gauge(prefix + "budget_spent").set(state.budget_spent)
        registry.gauge(prefix + "burn_fast").set(state.burn_fast)
        registry.gauge(prefix + "burn_slow").set(state.burn_slow)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def healthy(self) -> bool:
        with self._lock:
            return not any(s.breached for s in self._states)

    def state(self) -> dict:
        """JSON-serialisable view: overall health plus every objective's
        value, budget, and burn rates.  Does NOT tick — scrape rate must
        not skew tick-based budgets."""
        with self._lock:
            objectives = [s.as_dict() for s in self._states]
        return {
            "healthy": all(o["healthy"] for o in objectives),
            "ticks": self._tick_count,
            "objectives": objectives,
        }


def evaluate_registry(spec: SLOSpec, registry: MetricsRegistry) -> dict:
    """One-shot evaluation of a spec against a registry's cumulative
    state (the ``repro slo`` CLI shape: no history, the whole run is the
    window).  Objectives whose selector resolves to nothing report
    ``no_data``; callers decide whether that fails the check."""
    objectives = []
    for objective in spec.objectives:
        capture = _capture(registry, objective)
        value = (
            _window_value(objective, None, capture) if capture is not None else None
        )
        entry = {
            "name": objective.name,
            "metric": objective.metric,
            "op": objective.op,
            "threshold": objective.threshold,
            "value": value,
            "no_data": value is None,
            "ok": value is not None and objective.complies(value),
        }
        objectives.append(entry)
    return {
        "healthy": all(o["ok"] or o["no_data"] for o in objectives),
        "objectives": objectives,
    }
