"""The Instrumentation facade: one registry + one sink + span timing.

Every instrumented component (system, engine, executor, disk archive)
holds an :class:`Instrumentation` and calls three things on it:

* ``obs.registry.counter/gauge/histogram(name)`` — aggregate metrics;
* ``obs.event(type, **fields)`` — one structured event to the sink;
* ``with obs.span(name, **fields):`` — time a block, recording the
  duration in the ``span.<name>.seconds`` histogram and emitting a
  ``span`` event that carries its parent span's name, so nested spans
  (``flush`` → ``flush.phase1-regular``) can be re-assembled from the
  event stream.

Construction is cheap and the default sink is :class:`NullSink`, so
components can instrument unconditionally; turning observability "on"
means handing them a shared Instrumentation with a real sink.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.events import EventSink, NullSink
from repro.obs.metrics import MetricsRegistry

__all__ = ["Instrumentation"]


class Instrumentation:
    """A metrics registry and an event sink bound together."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        sink: Optional[EventSink] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sink = sink if sink is not None else NullSink()
        self._span_stack: list[str] = []

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------

    def event(self, type_: str, **fields) -> None:
        """Emit one structured event to the sink."""
        event = {"type": type_}
        event.update(fields)
        self.sink.emit(event)

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------

    @contextmanager
    def span(self, name: str, **fields) -> Iterator[None]:
        """Time a block of work.

        The wall-clock duration lands in the ``span.<name>.seconds``
        histogram; the emitted ``span`` event records ``parent`` (the
        enclosing span's name, or None at top level) plus any extra
        ``fields``.
        """
        parent = self._span_stack[-1] if self._span_stack else None
        self._span_stack.append(name)
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._span_stack.pop()
            self.registry.histogram(f"span.{name}.seconds").record(elapsed)
            self.event("span", name=name, parent=parent, seconds=elapsed, **fields)

    @property
    def current_span(self) -> Optional[str]:
        return self._span_stack[-1] if self._span_stack else None

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        return self.registry.snapshot()

    def close(self) -> None:
        self.sink.close()
