"""The Instrumentation facade: one registry + one sink + span timing.

Every instrumented component (system, engine, executor, disk archive)
holds an :class:`Instrumentation` and calls three things on it:

* ``obs.registry.counter/gauge/histogram(name)`` — aggregate metrics;
* ``obs.event(type, **fields)`` — one structured event to the sink;
* ``with obs.span(name, **fields):`` — time a block, recording the
  duration in the ``span.<name>.seconds`` histogram and emitting a
  ``span`` event that carries its parent span's name, so nested spans
  (``flush`` → ``flush.phase1-regular``) can be re-assembled from the
  event stream.

Construction is cheap and the default sink is :class:`NullSink`, so
components can instrument unconditionally; turning observability "on"
means handing them a shared Instrumentation with a real sink.

Tracing (PR 5) rides on the same object.  With ``tracing=True``:

* ``with obs.trace(name, **fields):`` opens a new root trace with a
  deterministic id (see :mod:`repro.obs.trace`) and emits a
  ``{"type": "trace"}`` event when it closes;
* ``with obs.trace_span(name, **fields):`` times a child span of the
  current trace (a no-op when no trace is open), and
  ``obs.trace_point(name, **fields)`` records an instantaneous child;
* ``span()`` events emitted while a trace is open additionally carry
  ``trace``/``span``/``parent_span`` ids, which is how the pre-existing
  per-phase flush spans attach to their flush trace.

``attribution=True`` is a sibling switch read by the memory engines and
the query executor: engines keep an eviction-cause ledger and the
executor attributes every memory miss to the eviction decision that
caused it (``query.miss.cause.*``).  Both switches default to off, so
the default configuration pays nothing beyond one boolean test.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.events import EventSink, NullSink
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceContext

__all__ = ["Instrumentation"]


class Instrumentation:
    """A metrics registry and an event sink bound together."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        sink: Optional[EventSink] = None,
        *,
        tracing: bool = False,
        attribution: bool = False,
        trace_prefix: str = "",
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sink = sink if sink is not None else NullSink()
        #: Emit per-request trace trees (query/flush traces, child spans).
        self.tracing = tracing
        #: Maintain eviction ledgers and attribute memory misses to the
        #: eviction decision that caused them.
        self.attribution = attribution
        #: Namespace prepended to trace ids.  Serial ids are unique only
        #: within one Instrumentation; when several instances write into
        #: one merged file (parallel trial workers), each needs a
        #: distinct, *deterministic* prefix (e.g. ``"w003."``) so traces
        #: stay separable offline.
        self.trace_prefix = trace_prefix
        self._span_stack: list[str] = []
        self._trace: Optional[TraceContext] = None
        self._trace_serial = 0

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------

    def event(self, type_: str, **fields) -> None:
        """Emit one structured event to the sink."""
        event = {"type": type_}
        event.update(fields)
        self.sink.emit(event)

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------

    @contextmanager
    def span(self, name: str, **fields) -> Iterator[None]:
        """Time a block of work.

        The wall-clock duration lands in the ``span.<name>.seconds``
        histogram; the emitted ``span`` event records ``parent`` (the
        enclosing span's name, or None at top level) plus any extra
        ``fields``.  While a trace is open, the event additionally
        carries ``trace``/``span``/``parent_span`` ids so the span slots
        into the trace tree.
        """
        parent = self._span_stack[-1] if self._span_stack else None
        self._span_stack.append(name)
        ctx = self._trace
        if ctx is not None:
            span_id = ctx.allocate_span()
            parent_span = ctx.current_span_id
            ctx.push(span_id)
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._span_stack.pop()
            self.registry.histogram(f"span.{name}.seconds").record(elapsed)
            if ctx is not None:
                ctx.pop()
                self.event(
                    "span",
                    name=name,
                    parent=parent,
                    seconds=elapsed,
                    trace=ctx.trace_id,
                    span=span_id,
                    parent_span=parent_span,
                    **fields,
                )
            else:
                self.event("span", name=name, parent=parent, seconds=elapsed, **fields)

    @property
    def current_span(self) -> Optional[str]:
        return self._span_stack[-1] if self._span_stack else None

    # ------------------------------------------------------------------
    # Traces
    # ------------------------------------------------------------------

    @contextmanager
    def trace(self, name: str, **fields) -> Iterator[Optional[TraceContext]]:
        """Open a new root trace around a block of work.

        Yields the :class:`TraceContext` (or None when tracing is off —
        callers that write to ``ctx.fields`` should gate on
        ``obs.tracing`` first).  The root ``{"type": "trace"}`` event is
        emitted when the block exits, carrying ``fields`` plus whatever
        the block added to ``ctx.fields``; child spans opened inside via
        :meth:`trace_span`/:meth:`span` reference it by trace id.
        """
        if not self.tracing:
            yield None
            return
        previous = self._trace
        self._trace_serial += 1
        ctx = TraceContext(f"{self.trace_prefix}{name}-{self._trace_serial}", name)
        self._trace = ctx
        root_id = ctx.allocate_span()
        ctx.push(root_id)
        start = time.perf_counter()
        try:
            yield ctx
        finally:
            elapsed = time.perf_counter() - start
            ctx.pop()
            self._trace = previous
            self.event(
                "trace",
                trace=ctx.trace_id,
                span=root_id,
                parent_span=None,
                name=name,
                seconds=elapsed,
                **fields,
                **ctx.fields,
            )

    @contextmanager
    def trace_span(self, name: str, **fields) -> Iterator[Optional[dict]]:
        """Time a child span of the current trace.

        A no-op (yields None) when no trace is open, so instrumented
        components can call it unconditionally on request paths.  Yields
        a dict the block may add fields to; the merged fields ride on
        the span's ``{"type": "trace"}`` event at exit.
        """
        ctx = self._trace
        if ctx is None:
            yield None
            return
        span_id = ctx.allocate_span()
        parent_span = ctx.current_span_id
        ctx.push(span_id)
        extra: dict = {}
        start = time.perf_counter()
        try:
            yield extra
        finally:
            elapsed = time.perf_counter() - start
            ctx.pop()
            self.event(
                "trace",
                trace=ctx.trace_id,
                span=span_id,
                parent_span=parent_span,
                name=name,
                seconds=elapsed,
                **fields,
                **extra,
            )

    def trace_point(self, name: str, **fields) -> None:
        """Record an instantaneous (zero-duration) child of the current
        trace — e.g. an elided disk lookup.  No-op outside a trace."""
        ctx = self._trace
        if ctx is None:
            return
        span_id = ctx.allocate_span()
        self.event(
            "trace",
            trace=ctx.trace_id,
            span=span_id,
            parent_span=ctx.current_span_id,
            name=name,
            seconds=0.0,
            **fields,
        )

    @property
    def current_trace(self) -> Optional[TraceContext]:
        """The open trace context, or None."""
        return self._trace

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def fork(
        self,
        *,
        sink: Optional[EventSink] = None,
        tracing: Optional[bool] = None,
        attribution: Optional[bool] = None,
        trace_prefix: Optional[str] = None,
    ) -> "Instrumentation":
        """A sibling Instrumentation sharing this one's registry.

        Unspecified switches inherit; the sibling's trace serial starts
        fresh, so components that fork (e.g. the flight recorder wiring)
        get deterministic trace ids independent of how many traces the
        parent already emitted.
        """
        return Instrumentation(
            self.registry,
            sink if sink is not None else self.sink,
            tracing=self.tracing if tracing is None else tracing,
            attribution=self.attribution if attribution is None else attribution,
            trace_prefix=self.trace_prefix if trace_prefix is None else trace_prefix,
        )

    def snapshot(self) -> dict:
        return self.registry.snapshot()

    def close(self) -> None:
        self.sink.close()
