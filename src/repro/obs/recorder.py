"""Flight recorder: a bounded black box of recent trace events.

Always-on tracing is too expensive to leave running in production, but
post-hoc debugging of an SLO breach needs exactly the traces that led
up to it.  The :class:`FlightRecorder` squares that circle: it is an
:class:`~repro.obs.events.EventSink` tee that keeps the last N events
in a ``deque(maxlen=N)`` ring buffer while forwarding every event to
the wrapped sink unchanged.  The system runs with tracing routed
through the recorder; on breach (or on demand) :meth:`dump` writes a
self-contained JSONL "black box":

1. a ``flight_recorder_dump`` header (reason, event count, capacity);
2. a ``run_snapshot`` event carrying the full registry snapshot, so
   ``repro trace`` renders the miss-cause table straight off the dump;
3. the SLO tracker's state, when one is attached;
4. the buffered events verbatim, oldest first — ``trace``/``span``
   events round-trip through :func:`repro.obs.traceview.build_traces`.

Attachment is via :func:`attach_flight_recorder`, which *forks* the
system's Instrumentation: the fork shares the metrics registry but gets
its own recorder-wrapped sink and tracing switched on with a fresh
trace serial, so recorder-enabled systems emit deterministic trace ids
regardless of what the surrounding run traced before.  When
``flight_recorder_events`` is 0 (the default) nothing is constructed —
the hot path pays one config test, the same bar as tracing.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from pathlib import Path
from typing import Optional, Union

from repro.obs.events import EventSink
from repro.obs.instrument import Instrumentation
from repro.obs.metrics import MetricsRegistry

__all__ = ["FlightRecorder", "attach_flight_recorder"]


class FlightRecorder(EventSink):
    """Ring-buffer sink tee: remembers the last ``capacity`` events."""

    def __init__(self, capacity: int, inner: Optional[EventSink] = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.inner = inner
        self._buffer: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.dumps = 0

    def emit(self, event: dict) -> None:
        with self._lock:
            self._buffer.append(event)
        if self.inner is not None:
            self.inner.emit(event)

    def events(self) -> list[dict]:
        """The buffered events, oldest first."""
        with self._lock:
            return list(self._buffer)

    def __len__(self) -> int:
        with self._lock:
            return len(self._buffer)

    def dump(
        self,
        path: Union[str, Path],
        registry: Optional[MetricsRegistry] = None,
        slo_state: Optional[dict] = None,
        reason: str = "on_demand",
    ) -> Path:
        """Write the black box to ``path`` (overwriting: the dump is a
        point-in-time artifact, and a later breach supersedes an earlier
        one).  Returns the path written."""
        path = Path(path)
        with self._lock:
            events = list(self._buffer)
            self.dumps += 1
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            header = {
                "type": "flight_recorder_dump",
                "reason": reason,
                "events": len(events),
                "capacity": self.capacity,
            }
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            if registry is not None:
                snapshot_event = {
                    "type": "run_snapshot",
                    "source": "flight_recorder",
                    "metrics": registry.snapshot(),
                }
                handle.write(json.dumps(snapshot_event, sort_keys=True) + "\n")
            if slo_state is not None:
                handle.write(
                    json.dumps(
                        {"type": "slo_state", "slo": slo_state}, sort_keys=True
                    )
                    + "\n"
                )
            for event in events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        return path

    def close(self) -> None:
        # The recorder wraps a sink it does not own (the run's shared
        # JSONL sink, typically); closing must not cascade.
        pass


def attach_flight_recorder(
    obs: Instrumentation, capacity: int
) -> tuple[Instrumentation, FlightRecorder]:
    """Fork ``obs`` with a recorder tee'd in front of its sink and
    tracing forced on; returns ``(forked_obs, recorder)``.

    The fork shares the registry (metrics stay unified) but not the
    trace serial, so every recorder-enabled system starts its trace ids
    at 1 — deterministic dumps independent of surrounding activity.
    """
    recorder = FlightRecorder(capacity, obs.sink)
    return obs.fork(sink=recorder, tracing=True), recorder
