"""Named metric primitives: counters, gauges, and histograms.

A :class:`MetricsRegistry` is a flat namespace of metrics created on
first use — ``registry.counter("flush.count").inc()`` — so call sites
never coordinate about declaration order.  Everything is plain Python
with no dependencies; a full registry snapshot is a JSON-serialisable
dict, which is what :meth:`~repro.engine.system.MicroblogSystem.snapshot`
and the exporters in :mod:`repro.obs.export` build on.

Metric names are dotted paths (``"flush.phase1-regular.freed_bytes"``).
The dots are purely a naming convention here; the Prometheus exporter
flattens them to underscores.
"""

from __future__ import annotations

import math

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
    "percentile_from_buckets",
]


def percentile_from_buckets(
    counts,
    count: int,
    p: float,
    scale: float,
    observed_min: float,
    observed_max: float,
) -> float:
    """Interpolated percentile over log₂ bucket counts.

    The p-th sample rank is located in its bucket, then placed by linear
    interpolation between the bucket's bounds (bucket 0 spans
    ``[0, scale]``; bucket i spans ``(scale·2^i, scale·2^(i+1)]``).  The
    result is clamped to ``[observed_min, observed_max]`` so percentiles
    stay physical: a histogram of identical samples reports that exact
    value at every percentile, and no percentile can exceed a sample
    that was actually recorded.
    """
    if not 0.0 < p <= 100.0:
        raise ValueError(f"p must be in (0, 100], got {p}")
    if count == 0:
        return 0.0
    threshold = math.ceil(count * p / 100.0)
    running = 0
    for index, bucket_count in enumerate(counts):
        if not bucket_count:
            continue
        if running + bucket_count >= threshold:
            lower = 0.0 if index == 0 else scale * (2.0 ** index)
            upper = scale * (2.0 ** (index + 1))
            fraction = (threshold - running) / bucket_count
            value = lower + (upper - lower) * fraction
            return min(max(value, observed_min), observed_max)
        running += bucket_count
    return observed_max


class Counter:
    """A monotonically increasing integer-or-float count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """A value that can move both ways (memory bytes, queue depth)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


class Histogram:
    """Log₂-bucketed distribution of non-negative samples.

    Tracks count/sum/min/max exactly; the bucket layout (powers of two
    from ``scale`` upward) bounds memory at O(64) counters per histogram
    no matter how many samples arrive, mirroring the approach of
    :class:`repro.engine.latency.LatencyHistogram` but generalised to any
    unit (seconds, bytes, postings).
    """

    _BUCKETS = 64

    __slots__ = ("scale", "count", "total", "min", "max", "_counts")

    def __init__(self, scale: float = 1e-6) -> None:
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.scale = scale
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0
        self._counts = [0] * self._BUCKETS

    def _bucket(self, value: float) -> int:
        if value <= self.scale:
            return 0
        index = int(math.log2(value / self.scale))
        return min(index, self._BUCKETS - 1)

    def record(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histogram samples must be >= 0, got {value}")
        self._counts[self._bucket(value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Linear interpolation within the bucket holding the p-th
        percentile, clamped to ``[min, max]`` of the observed samples.

        Without the clamp the bucket bound can exceed every sample ever
        recorded (e.g. all-sub-microsecond samples reporting p50 = 2µs
        while ``max`` < 1µs), which makes percentiles non-physical.
        """
        return percentile_from_buckets(
            self._counts, self.count, p, self.scale, self.min, self.max
        )

    def snapshot(self) -> dict:
        # Trailing zero buckets are trimmed: the list is only as long as
        # the highest occupied bucket, so idle histograms stay tiny in
        # JSONL snapshots while merge_snapshot can still rebuild state.
        counts = list(self._counts)
        while counts and counts[-1] == 0:
            counts.pop()
        return {
            "count": self.count,
            "sum": self.total,
            "min": 0.0 if self.count == 0 else self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
            "scale": self.scale,
            "buckets": counts,
        }

    def merge_snapshot(self, snap: dict) -> None:
        """Fold another histogram's :meth:`snapshot` into this one.

        Count/sum add, min/max widen, and bucket counts add bucketwise —
        so percentiles of the merged histogram are exactly what a single
        histogram fed both sample streams would report.  Snapshots that
        predate the ``buckets`` field degrade gracefully: their whole
        count lands in the bucket of their mean.
        """
        count = snap.get("count", 0)
        if not count:
            return
        scale = snap.get("scale", self.scale)
        if scale != self.scale:
            raise ValueError(
                f"cannot merge histogram snapshots with different scales "
                f"({scale} != {self.scale})"
            )
        self.count += count
        self.total += snap.get("sum", 0.0)
        if snap.get("min", math.inf) < self.min:
            self.min = snap["min"]
        if snap.get("max", 0.0) > self.max:
            self.max = snap["max"]
        buckets = snap.get("buckets")
        if buckets is None:
            self._counts[self._bucket(snap.get("mean", 0.0))] += count
        else:
            for index, bucket_count in enumerate(buckets[: self._BUCKETS]):
                self._counts[index] += bucket_count


class MetricsRegistry:
    """A flat, create-on-first-use namespace of named metrics."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Accessors (get-or-create)
    # ------------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge()
        return metric

    def histogram(self, name: str, scale: float = 1e-6) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(scale)
        return metric

    # ------------------------------------------------------------------
    # Accessors (peek — never create)
    # ------------------------------------------------------------------

    def get_counter(self, name: str):
        """The named counter, or None — never creates (SLO probes must
        not pollute the registry with metrics nothing ever recorded)."""
        return self._counters.get(name)

    def get_gauge(self, name: str):
        return self._gauges.get(name)

    def get_histogram(self, name: str):
        return self._histograms.get(name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def __contains__(self, name: str) -> bool:
        return (
            name in self._counters
            or name in self._gauges
            or name in self._histograms
        )

    def counter_values(self, prefix: str) -> dict:
        """Counters whose name starts with ``prefix``, keyed by the
        remainder of the name (``counter_values("query.miss.cause.")``
        → ``{"phase1-regular": 3, ...}``).  Zero-valued counters are
        skipped."""
        offset = len(prefix)
        return {
            name[offset:]: metric.value
            for name, metric in sorted(self._counters.items())
            if name.startswith(prefix) and metric.value
        }

    def snapshot(self) -> dict:
        """JSON-serialisable view of every metric, names sorted."""
        return {
            "counters": {
                name: self._counters[name].value for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].snapshot()
                for name in sorted(self._histograms)
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` dict into this registry.

        Counters sum, gauges take the incoming value (last write wins —
        point-in-time values from different workers are not additive),
        histograms merge exactly via :meth:`Histogram.merge_snapshot`.
        This is how per-worker registries from ``run_trials(jobs=N)``
        aggregate into one picture.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, hist_snap in snapshot.get("histograms", {}).items():
            scale = hist_snap.get("scale", 1e-6)
            self.histogram(name, scale=scale).merge_snapshot(hist_snap)

    def reset(self) -> None:
        """Drop every metric (measurement-window boundaries)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


def merge_snapshots(snapshots) -> dict:
    """Aggregate an iterable of registry snapshots into one snapshot.

    Convenience over :meth:`MetricsRegistry.merge` for offline
    aggregation of the per-worker ``.wNNN`` part snapshots that
    ``run_trials(jobs=N, metrics_path=...)`` leaves in the event stream.
    """
    merged = MetricsRegistry()
    for snapshot in snapshots:
        merged.merge(snapshot)
    return merged.snapshot()
